// Microbenchmarks (google-benchmark) of the ordering primitives — the
// mechanism-level half of experiment E7a.
//
// The paper argues the CO protocol orders PDUs with plain sequence numbers
// while "more computation to synchronize the virtual clock is required" in
// ISIS. Here the primitive operations are timed head-to-head:
//   * Thm 4.1 causality test (two comparisons + one vector index)  vs
//     vector-clock comparison (O(n) component scan);
//   * ACK-vector acceptance bookkeeping vs vector-clock merge;
//   * CPI insertion into a PRL of realistic depth;
//   * wire encode/decode of a CO PDU.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/clocks/vector_clock.h"
#include "src/driver/cluster.h"
#include "src/co/core.h"
#include "src/co/effects.h"
#include "src/co/kernels/kernels.h"
#include "src/co/kernels/layout.h"
#include "src/co/prl.h"
#include "src/co/wire.h"
#include "src/common/rng.h"
#include "src/fuzz/json.h"
#include "src/obs/trace/sink.h"
#include "src/obs/trace/tracer.h"

namespace {

using namespace co;
using namespace co::proto;

CoPdu make_pdu(EntityId src, SeqNo seq, std::size_t n, Rng& rng) {
  CoPdu p;
  p.cid = 1;
  p.src = src;
  p.seq = seq;
  p.ack.resize(n);
  for (auto& a : p.ack) a = rng.next_below(seq + 1) + 1;
  p.buf = 64;
  return p;
}

void BM_Theorem41Test(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const CoPdu p = make_pdu(0, 100, n, rng);
  const CoPdu q = make_pdu(1, 120, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(causally_precedes(p, q));
    benchmark::DoNotOptimize(causally_precedes(q, p));
  }
}
BENCHMARK(BM_Theorem41Test)->Arg(4)->Arg(16)->Arg(64);

void BM_VectorClockCompare(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  clocks::VectorClock a(n), b(n);
  Rng rng(2);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(static_cast<EntityId>(i), rng.next_below(100));
    b.set(static_cast<EntityId>(i), rng.next_below(100));
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(clocks::VectorClock::compare(a, b));
}
BENCHMARK(BM_VectorClockCompare)->Arg(4)->Arg(16)->Arg(64);

void BM_VectorClockMerge(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  clocks::VectorClock a(n), b(n);
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i)
    b.set(static_cast<EntityId>(i), rng.next_below(100));
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VectorClockMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_CpiInsert(benchmark::State& state) {
  const std::size_t n = 8;
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    Prl prl;
    // Fill with a causally consistent chain (same source => ordered).
    for (std::size_t i = 0; i < depth; ++i)
      prl.cpi_insert(make_pdu(0, i + 1, n, rng));
    CoPdu p = make_pdu(1, 5, n, rng);
    p.ack.assign(n, 1);  // concurrent with everything -> worst-case scan
    state.ResumeTiming();
    prl.cpi_insert(std::move(p));
  }
}
BENCHMARK(BM_CpiInsert)->Arg(8)->Arg(32)->Arg(128);

// --- SIMD kernel layer (src/co/kernels) ------------------------------------
// Each kernel is timed under two backends selected by the second range arg:
// 0 = the portable scalar reference, 1 = the process-wide dispatch
// (kern::selected(): AVX2 > SSE2 > scalar on x86-64). The n sweep
// (32 -> 1024) feeds the EXPERIMENTS.md scaling curve: the scalar cost
// grows linearly in n while the SIMD backends grow at lane-width fraction
// of that slope.

/// Shared randomized kernel operands for cluster size n.
struct KernelFixture {
  explicit KernelFixture(std::size_t n, std::uint64_t seed = 7) : n_(n) {
    Rng rng(seed);
    row.assign(n, 0);
    ack.assign(n, 0);
    mins.assign(n, 0);
    req.assign(n, 0);
    known_max.assign(n, 0);
    high.assign(n, 0);
    flags.assign(n, 1);
    mask.assign(kern::mask_words(n), 0);
    gate_ack.assign(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
      row[k] = rng.next_below(1000) + 1;
      ack[k] = rng.next_below(1000) + 1;
      mins[k] = rng.next_below(row[k]) + 1;
      req[k] = rng.next_below(1000) + 1;
      known_max[k] = rng.next_below(1000);
      high[k] = rng.next_below(1000);
      // The gate's hot path is the PASS case (every lane scanned): in a
      // healthy run predecessors are packed before dependents arrive. A
      // fail-heavy operand set would just time scalar's lane-0 early exit.
      gate_ack[k] = rng.next_below(high[k] + 2);
    }
    table.reset(n, n, 1);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        table.row(r)[c] = rng.next_below(1000) + 1;
  }

  std::size_t n_;
  std::vector<SeqNo> row, ack, mins, req, known_max, high, gate_ack;
  std::vector<std::uint8_t> flags;
  std::vector<std::uint64_t> mask;
  kern::SeqTable table;
};

const kern::KernelOps& bench_ops(std::int64_t which) {
  return which == 0 ? *kern::by_name("scalar") : kern::selected();
}

void BM_KernelMergeMax(benchmark::State& state) {
  KernelFixture f(static_cast<std::size_t>(state.range(0)));
  const kern::KernelOps& ops = bench_ops(state.range(1));
  state.SetLabel(ops.name);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        ops.merge_max(f.row.data(), f.ack.data(), f.mins.data(), f.n_));
}

void BM_KernelColumnMins(benchmark::State& state) {
  KernelFixture f(static_cast<std::size_t>(state.range(0)));
  const kern::KernelOps& ops = bench_ops(state.range(1));
  state.SetLabel(ops.name);
  for (auto _ : state) {
    ops.column_mins(f.table.data(), f.table.rows(), f.table.cols(),
                    f.table.stride(), f.mins.data());
    benchmark::DoNotOptimize(f.mins.data());
  }
}

void BM_KernelLossScan(benchmark::State& state) {
  KernelFixture f(static_cast<std::size_t>(state.range(0)));
  const kern::KernelOps& ops = bench_ops(state.range(1));
  state.SetLabel(ops.name);
  for (auto _ : state) {
    ops.loss_scan(f.ack.data(), f.req.data(), f.known_max.data(), f.n_,
                  f.mask.data());
    benchmark::DoNotOptimize(f.mask.data());
  }
}

void BM_KernelLtMask(benchmark::State& state) {
  KernelFixture f(static_cast<std::size_t>(state.range(0)));
  const kern::KernelOps& ops = bench_ops(state.range(1));
  state.SetLabel(ops.name);
  for (auto _ : state) {
    ops.lt_mask(f.row.data(), f.mins.data(), f.n_, f.mask.data());
    benchmark::DoNotOptimize(f.mask.data());
  }
}

void BM_KernelCausalGate(benchmark::State& state) {
  KernelFixture f(static_cast<std::size_t>(state.range(0)));
  const kern::KernelOps& ops = bench_ops(state.range(1));
  state.SetLabel(ops.name);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        ops.causal_gate(f.gate_ack.data(), f.high.data(), f.n_, f.n_ / 2));
}

void BM_KernelAllSet(benchmark::State& state) {
  KernelFixture f(static_cast<std::size_t>(state.range(0)));
  const kern::KernelOps& ops = bench_ops(state.range(1));
  state.SetLabel(ops.name);
  for (auto _ : state)
    benchmark::DoNotOptimize(ops.all_set(f.flags.data(), f.n_, f.n_ / 2));
}

#define CO_KERNEL_BENCH(fn) \
  BENCHMARK(fn)->ArgsProduct({{32, 64, 128, 256, 512, 1024}, {0, 1}})
CO_KERNEL_BENCH(BM_KernelMergeMax);
CO_KERNEL_BENCH(BM_KernelColumnMins);
CO_KERNEL_BENCH(BM_KernelLossScan);
CO_KERNEL_BENCH(BM_KernelLtMask);
CO_KERNEL_BENCH(BM_KernelCausalGate);
CO_KERNEL_BENCH(BM_KernelAllSet);
#undef CO_KERNEL_BENCH

void BM_WireEncodeDecode(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  CoPdu p = make_pdu(0, 1000, n, rng);
  p.data.assign(64, 0xcd);
  const Message msg(p);
  for (auto _ : state) {
    const auto bytes = encode(msg);
    benchmark::DoNotOptimize(decode(bytes));
  }
}
BENCHMARK(BM_WireEncodeDecode)->Arg(4)->Arg(16)->Arg(64);

// Batch ingestion sweep over the sans-io core: feed the SAME arrival
// stream to a fresh n=32 CoCore through step() at 1/4/16/64 PDUs per
// call and report per-message cost. The receipt pipeline (PACK/ACK scan,
// pruning, deferred confirmation) runs once per step, so the curve shows
// how its cost amortizes across a batch; the batch-size-1 point IS the
// per-message path the drivers use for single arrivals.
fuzz::Json::Object run_batch_sweep() {
  constexpr std::size_t kN = 32;           // cluster size (31 peers + self)
  constexpr std::size_t kMessages = 4096;  // arrivals per sweep point
  constexpr int kReps = 3;                 // best-of, to shed scheduler noise
  constexpr BufUnits kBuf = 1u << 16;

  CoConfig cfg;
  cfg.n = kN;
  cfg.window = 8;
  cfg.assumed_peer_buffer = kBuf;

  // Deterministic all-heard stream: peers 1..31 broadcast round-robin in
  // seq order; each PDU's ACK vector says its sender has heard everything
  // broadcast so far (entity 0 receives in the same order, so causal
  // dependencies are always already satisfied and delivery keeps pace).
  const auto make_inputs = [&] {
    std::vector<Input> inputs;
    inputs.reserve(kMessages);
    std::vector<SeqNo> next_seq(kN, 1);
    time::Tick t = 0;
    for (std::size_t i = 0; i < kMessages; ++i) {
      const EntityId from = 1 + static_cast<EntityId>(i % (kN - 1));
      CoPdu p;
      p.cid = 1;
      p.src = from;
      p.seq = next_seq[from]++;
      p.ack.resize(kN);
      p.ack[0] = 1;  // entity 0's own (ctrl) sends are never acked here
      for (std::size_t j = 1; j < kN; ++j) p.ack[j] = next_seq[j];
      p.buf = kBuf;
      p.data = {static_cast<std::uint8_t>(i)};
      t += 1000;  // 1 us apart; timers are armed but never fired
      inputs.push_back(Input{t, kBuf, MessageArrived{from, Message(std::move(p))}});
    }
    return inputs;
  };

  fuzz::Json::Object sweep;
  for (const std::size_t batch : {1u, 4u, 16u, 64u}) {
    double best_us = 0.0;
    // rep 0 is an untimed warm-up (faults pages, ramps the clock) so the
    // first sweep point isn't penalized for running cold.
    for (int rep = -1; rep < kReps; ++rep) {
      const std::vector<Input> inputs = make_inputs();
      CoCore core(0, cfg);
      EffectBatch out;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < inputs.size(); i += batch) {
        const std::size_t k = std::min(batch, inputs.size() - i);
        out.clear();
        core.step(&inputs[i], k, out);
      }
      const auto t1 = std::chrono::steady_clock::now();
      if (rep < 0) continue;
      const double us =
          std::chrono::duration<double, std::micro>(t1 - t0).count() /
          static_cast<double>(kMessages);
      if (rep == 0 || us < best_us) best_us = us;
    }
    sweep[std::to_string(batch)] = best_us;
  }
  return sweep;
}

// Per-kernel nanoseconds per call at cluster size n, for the scalar
// reference and the process-wide dispatch (kern::selected()). The
// regression gate asserts the dispatched backend never loses to scalar
// beyond noise; when CO_FORCE_SCALAR pins the dispatch to scalar the two
// columns time the same function and the gate is trivially satisfied.
fuzz::Json::Object kernel_metrics(std::size_t n) {
  constexpr int kIters = 20000;
  constexpr int kReps = 3;
  KernelFixture f(n);

  const auto run_op = [&](const kern::KernelOps& ops, int op) {
    switch (op) {
      case 0:
        benchmark::DoNotOptimize(
            ops.merge_max(f.row.data(), f.ack.data(), f.mins.data(), f.n_));
        break;
      case 1:
        ops.column_mins(f.table.data(), f.table.rows(), f.table.cols(),
                        f.table.stride(), f.mins.data());
        benchmark::DoNotOptimize(f.mins.data());
        break;
      case 2:
        ops.loss_scan(f.ack.data(), f.req.data(), f.known_max.data(), f.n_,
                      f.mask.data());
        benchmark::DoNotOptimize(f.mask.data());
        break;
      case 3:
        ops.lt_mask(f.row.data(), f.mins.data(), f.n_, f.mask.data());
        benchmark::DoNotOptimize(f.mask.data());
        break;
      case 4:
        benchmark::DoNotOptimize(
            ops.causal_gate(f.gate_ack.data(), f.high.data(), f.n_, f.n_ / 2));
        break;
      default:
        benchmark::DoNotOptimize(ops.all_set(f.flags.data(), f.n_, f.n_ / 2));
        break;
    }
  };
  const auto time_ns = [&](const kern::KernelOps& ops, int op) {
    double best = 0.0;
    for (int rep = -1; rep < kReps; ++rep) {  // rep -1 is an untimed warm-up
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) run_op(ops, op);
      const auto t1 = std::chrono::steady_clock::now();
      if (rep < 0) continue;
      const double ns =
          std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters;
      if (rep == 0 || ns < best) best = ns;
    }
    return best;
  };

  const kern::KernelOps* backends[2] = {kern::by_name("scalar"),
                                        &kern::selected()};
  static constexpr const char* kSlots[2] = {"scalar", "dispatch"};
  static constexpr const char* kNames[6] = {"merge_max", "column_mins",
                                            "loss_scan", "lt_mask",
                                            "causal_gate", "all_set"};
  fuzz::Json::Object kernels;
  for (int op = 0; op < 6; ++op) {
    fuzz::Json::Object per;
    for (int b = 0; b < 2; ++b) per[kSlots[b]] = time_ns(*backends[b], op);
    kernels[kNames[op]] = fuzz::Json(std::move(per));
  }
  return kernels;
}

// --- shared n=32 cluster workload ------------------------------------------

net::McConfig bench_net() {
  net::McConfig net;
  net.delay = net::DelayModel::fixed(100 * sim::kMicrosecond);
  net.buffer_capacity = 1u << 16;
  return net;
}

void pump_rounds(CoCluster& c, std::size_t n, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    for (EntityId e = 0; e < static_cast<EntityId>(n); ++e)
      c.submit_text(e, "hot-path payload");
    if (!c.run_until_delivered(c.scheduler().now() +
                               600'000 * sim::kMillisecond))
      throw std::runtime_error("bench_micro: cluster failed to deliver");
  }
}

/// Summed (processing_ns, messages_processed) across all entities.
std::pair<std::uint64_t, std::uint64_t> cluster_processing(CoCluster& c,
                                                           std::size_t n) {
  std::pair<std::uint64_t, std::uint64_t> ns_msgs{0, 0};
  for (EntityId e = 0; e < static_cast<EntityId>(n); ++e) {
    const CoEntityStats::Snapshot s = c.entity(e).stats().snapshot();
    ns_msgs.first += s.processing_ns;
    ns_msgs.second += s.messages_processed;
  }
  return ns_msgs;
}

// The same n=32 workload under three tracing modes, reporting steady-phase
// tco per mode:
//   * disabled — no Tracer attached: every emit site costs one pointer
//     null check. This is the production default and the row the
//     regression gate holds to within --trace-slack (1%) of the committed
//     baseline;
//   * ring — the always-on flight recorder (overwrite-oldest rings);
//   * null_sink — streaming mode draining every record into the no-op
//     sink: full emit + drain cost with zero I/O, the sink-overhead floor.
fuzz::Json::Object trace_overhead_metrics() {
  constexpr std::size_t kN = 32;
  constexpr int kWarmupRounds = 4;
  constexpr int kSteadyRounds = 12;
  constexpr int kReps = 3;  // best-of, to shed scheduler noise

  const auto tco_us = [&](obs::trace::Tracer* tracer) {
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      auto cluster = ClusterBuilder(kN)
                         .window(8)
                         .net(bench_net())
                         .record_trace(false)
                         .tracer(tracer)
                         .build();
      CoCluster& c = *cluster;
      pump_rounds(c, kN, kWarmupRounds);
      const auto warm = cluster_processing(c, kN);
      pump_rounds(c, kN, kSteadyRounds);
      const auto done = cluster_processing(c, kN);
      const std::uint64_t msgs = done.second - warm.second;
      const double us = msgs ? static_cast<double>(done.first - warm.first) /
                                   1e3 / static_cast<double>(msgs)
                             : 0.0;
      if (rep == 0 || us < best) best = us;
    }
    return best;
  };

  fuzz::Json::Object rows;
  rows["disabled_us_per_message"] = tco_us(nullptr);
  {
    obs::trace::Tracer ring;  // flight-recorder defaults
    rows["ring_us_per_message"] = tco_us(&ring);
  }
  {
    obs::trace::TracerConfig cfg;
    cfg.overwrite_oldest = false;
    obs::trace::Tracer streaming(cfg, &obs::trace::null_trace_sink());
    rows["null_sink_us_per_message"] = tco_us(&streaming);
  }
  return rows;
}

// --json FILE: the end-to-end half of E7a — run a full n=32 cluster under
// continuous traffic and report the protocol's hot-path cost figures:
//   * tco_us_per_message — wall-clock protocol processing per message,
//     measured over the steady phase only (warm pools, warm caches);
//   * steady_state_allocations — fresh PduPool heap constructions during
//     the steady phase. The pooled hot path promises exactly zero: every
//     accept→ack cycle runs on recycled PDU bodies.
// CI's bench-smoke step diffs this against the committed
// BENCH_baseline.json (scripts/check_bench_regression.py).
int run_hot_path_json(const std::string& path) {
  constexpr std::size_t kN = 32;
  constexpr int kWarmupRounds = 10;
  constexpr int kSteadyRounds = 40;

  auto cluster = ClusterBuilder(kN)
                     .window(8)
                     .net(bench_net())
                     .record_trace(false)  // oracle costs O(n) per event
                     .build();
  CoCluster& c = *cluster;

  const auto pool_allocations = [&c] {
    std::uint64_t total = 0;
    for (EntityId e = 0; e < static_cast<EntityId>(kN); ++e)
      total += c.entity(e).pool().bodies_allocated();
    return total;
  };

  pump_rounds(c, kN, kWarmupRounds);
  const std::uint64_t allocs_warm = pool_allocations();
  const auto proc_warm = cluster_processing(c, kN);
  pump_rounds(c, kN, kSteadyRounds);
  const std::uint64_t steady_allocs = pool_allocations() - allocs_warm;
  const auto proc_done = cluster_processing(c, kN);

  const std::uint64_t steady_ns = proc_done.first - proc_warm.first;
  const std::uint64_t steady_msgs = proc_done.second - proc_warm.second;
  std::uint64_t reused = 0;
  for (EntityId e = 0; e < static_cast<EntityId>(kN); ++e)
    reused += c.entity(e).pool().bodies_reused();

  fuzz::Json::Object doc;
  doc["n"] = std::uint64_t{kN};
  doc["rounds_warmup"] = std::uint64_t{kWarmupRounds};
  doc["rounds_steady"] = std::uint64_t{kSteadyRounds};
  doc["messages_steady"] = steady_msgs;
  doc["tco_us_per_message"] =
      steady_msgs ? static_cast<double>(steady_ns) / 1e3 /
                        static_cast<double>(steady_msgs)
                  : 0.0;
  doc["pool_bodies_allocated"] = pool_allocations();
  doc["pool_bodies_reused"] = reused;
  doc["steady_state_allocations"] = steady_allocs;
  // Per-message cost of step() at 1/4/16/64 PDUs per call (microseconds).
  // The regression gate requires the batched points to be no slower per
  // message than the batch-size-1 path.
  doc["batch_step_us_per_message"] = run_batch_sweep();
  // Which SIMD backend the hot loops dispatched through, and per-kernel
  // ns/call scalar-vs-dispatch at the same n. The regression gate requires
  // the dispatched backend to keep pace with scalar on every kernel.
  doc["kernel_dispatch"] = std::string(kern::selected().name);
  doc["kernels_ns"] = kernel_metrics(kN);
  // tco under the three tracing modes. The regression gate pins the
  // "disabled" row (tracer not attached — the production default) to
  // within 1% of the committed baseline: the emit call sites themselves
  // must stay off the hot path.
  doc["trace_overhead"] = trace_overhead_metrics();

  const std::string text = fuzz::Json(std::move(doc)).dump(2);
  std::ofstream out(path);
  out << text << '\n';
  if (!out) {
    std::cerr << "bench_micro: cannot write " << path << '\n';
    return 1;
  }
  std::cout << text << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "usage: bench_micro [--json FILE | benchmark flags]\n";
        return 2;
      }
      return run_hot_path_json(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
