// Microbenchmarks (google-benchmark) of the ordering primitives — the
// mechanism-level half of experiment E7a.
//
// The paper argues the CO protocol orders PDUs with plain sequence numbers
// while "more computation to synchronize the virtual clock is required" in
// ISIS. Here the primitive operations are timed head-to-head:
//   * Thm 4.1 causality test (two comparisons + one vector index)  vs
//     vector-clock comparison (O(n) component scan);
//   * ACK-vector acceptance bookkeeping vs vector-clock merge;
//   * CPI insertion into a PRL of realistic depth;
//   * wire encode/decode of a CO PDU.
#include <benchmark/benchmark.h>

#include "src/clocks/vector_clock.h"
#include "src/co/prl.h"
#include "src/co/wire.h"
#include "src/common/rng.h"

namespace {

using namespace co;
using namespace co::proto;

CoPdu make_pdu(EntityId src, SeqNo seq, std::size_t n, Rng& rng) {
  CoPdu p;
  p.cid = 1;
  p.src = src;
  p.seq = seq;
  p.ack.resize(n);
  for (auto& a : p.ack) a = rng.next_below(seq + 1) + 1;
  p.buf = 64;
  return p;
}

void BM_Theorem41Test(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const CoPdu p = make_pdu(0, 100, n, rng);
  const CoPdu q = make_pdu(1, 120, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(causally_precedes(p, q));
    benchmark::DoNotOptimize(causally_precedes(q, p));
  }
}
BENCHMARK(BM_Theorem41Test)->Arg(4)->Arg(16)->Arg(64);

void BM_VectorClockCompare(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  clocks::VectorClock a(n), b(n);
  Rng rng(2);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(static_cast<EntityId>(i), rng.next_below(100));
    b.set(static_cast<EntityId>(i), rng.next_below(100));
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(clocks::VectorClock::compare(a, b));
}
BENCHMARK(BM_VectorClockCompare)->Arg(4)->Arg(16)->Arg(64);

void BM_VectorClockMerge(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  clocks::VectorClock a(n), b(n);
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i)
    b.set(static_cast<EntityId>(i), rng.next_below(100));
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VectorClockMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_CpiInsert(benchmark::State& state) {
  const std::size_t n = 8;
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    Prl prl;
    // Fill with a causally consistent chain (same source => ordered).
    for (std::size_t i = 0; i < depth; ++i)
      prl.cpi_insert(make_pdu(0, i + 1, n, rng));
    CoPdu p = make_pdu(1, 5, n, rng);
    p.ack.assign(n, 1);  // concurrent with everything -> worst-case scan
    state.ResumeTiming();
    prl.cpi_insert(std::move(p));
  }
}
BENCHMARK(BM_CpiInsert)->Arg(8)->Arg(32)->Arg(128);

void BM_WireEncodeDecode(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  CoPdu p = make_pdu(0, 1000, n, rng);
  p.data.assign(64, 0xcd);
  const Message msg(p);
  for (auto _ : state) {
    const auto bytes = encode(msg);
    benchmark::DoNotOptimize(decode(bytes));
  }
}
BENCHMARK(BM_WireEncodeDecode)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
