// Real-transport measurement: the CO protocol over actual loopback UDP
// sockets (transport::CoNode) — the closest this repo gets to the paper's
// workstation testbed. Reports wall-clock application-to-application
// latency (submit -> delivery at every other node) and goodput, loss-free
// and with 10% injected send loss.
//
// Unlike the simulator benches, these numbers include every real cost:
// serialization, syscalls, kernel scheduling, timer jitter.
#include <chrono>
#include <cstring>
#include <iostream>
#include <mutex>
#include <thread>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/transport/node.h"

namespace {

using namespace co;
using namespace co::transport;
using namespace std::chrono_literals;

struct RunResult {
  bool completed = false;
  double latency_ms_mean = 0;
  double latency_ms_p99 = 0;
  double wall_ms = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t dropped = 0;
  std::uint64_t retransmitted = 0;
};

RunResult run(std::size_t n, int messages_per_node, double loss) {
  std::mutex mutex;
  OnlineStats latency_ms;
  PercentileSampler sampler;
  std::vector<std::uint64_t> delivered(n, 0);

  // Payload carries the send timestamp (steady_clock ns).
  std::vector<std::unique_ptr<CoNode>> nodes;
  const auto t0 = std::chrono::steady_clock::now();
  proto::CoConfig pcfg;
  pcfg.defer_timeout = 2 * time::kMillisecond;
  pcfg.retransmit_timeout = 10 * time::kMillisecond;
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<EntityId>(i);
    nodes.push_back(
        NodeBuilder(id, n)
            .proto(pcfg)
            .send_loss(loss, 17 + i)
            .deliver([&, id](EntityId,
                             const std::vector<std::uint8_t>& data) {
              const auto now = std::chrono::steady_clock::now();
              std::uint64_t sent_ns = 0;
              std::memcpy(&sent_ns, data.data(), sizeof sent_ns);
              const double ms =
                  (std::chrono::duration_cast<std::chrono::nanoseconds>(
                       now - t0)
                       .count() -
                   static_cast<double>(sent_ns)) /
                  1e6;
              const std::lock_guard<std::mutex> lock(mutex);
              latency_ms.add(ms);
              sampler.add(ms);
              ++delivered[static_cast<std::size_t>(id)];
            })
            .build());
  }
  std::vector<UdpEndpoint> table;
  for (const auto& node : nodes) table.push_back(node->local_endpoint());
  for (auto& node : nodes) node->set_peers(table);

  std::vector<std::thread> threads;
  for (auto& node : nodes)
    threads.emplace_back([&node] { node->run_for(60'000ms); });

  for (int m = 0; m < messages_per_node; ++m) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t now_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count();
      std::vector<std::uint8_t> payload(sizeof now_ns + 24, 0x5a);
      std::memcpy(payload.data(), &now_ns, sizeof now_ns);
      nodes[i]->submit(std::move(payload));
    }
    std::this_thread::sleep_for(1ms);  // ~n msgs/ms offered load
  }

  const std::uint64_t expect =
      static_cast<std::uint64_t>(messages_per_node) * n;
  const auto deadline = std::chrono::steady_clock::now() + 30'000ms;
  bool completed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      completed = true;
      for (const auto d : delivered) completed &= (d >= expect);
    }
    if (completed) break;
    std::this_thread::sleep_for(2ms);
  }
  for (auto& node : nodes) node->stop();
  for (auto& t : threads) t.join();

  RunResult r;
  r.completed = completed;
  r.latency_ms_mean = latency_ms.mean();
  r.latency_ms_p99 = sampler.percentile(0.99);
  r.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  for (const auto& node : nodes) {
    r.datagrams += node->stats().datagrams_sent;
    r.dropped += node->stats().datagrams_dropped_injected;
    r.retransmitted += node->protocol_stats().retransmissions_sent;
  }
  return r;
}

}  // namespace

int main() {
  std::cout << "=== Real loopback-UDP deployment: app-to-app latency ===\n"
            << "(submit -> delivery wall-clock, all costs included; compare "
               "the SHAPE with the simulated Tap of bench_fig8)\n\n";
  co::Table table({"n", "loss", "latency mean [ms]", "p99 [ms]", "datagrams",
                   "dropped", "rtx", "completed"});
  struct Case {
    std::size_t n;
    double loss;
  };
  for (const Case c : {Case{2, 0.0}, Case{3, 0.0}, Case{5, 0.0},
                       Case{3, 0.10}}) {
    const auto r = run(c.n, 50, c.loss);
    table.add_row({co::Table::num(static_cast<std::uint64_t>(c.n)),
                   co::Table::num(c.loss, 2),
                   co::Table::num(r.latency_ms_mean, 2),
                   co::Table::num(r.latency_ms_p99, 2),
                   co::Table::num(r.datagrams), co::Table::num(r.dropped),
                   co::Table::num(r.retransmitted),
                   r.completed ? "yes" : "NO"});
  }
  table.print(std::cout);
  table.write_csv_if_requested("udp_latency");
  std::cout << "\nExpected shape: a few ms mean (two confirmation rounds at "
               "the 2 ms defer cadence dominate, exactly the 2R structure of "
               "E2); loss adds retransmission tail latency at the p99.\n";
  return 0;
}
