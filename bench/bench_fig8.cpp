// Figure 8 reproduction — "Processing time and delay time".
//
// The paper plots, against the number of entities n in the cluster:
//   Tco — the processing time per PDU of each (system) entity, and
//   Tap — the transmission delay among the application entities,
// measured on SPARC2 workstations over Ethernet with every application
// entity sending DT requests continuously (file transfer). The figure shows
// both growing roughly linearly in n (§5: "the processing overhead of each
// entity is O(n)").
//
// Here Tco is the measured wall-clock time inside the protocol handler per
// message (real work of the real implementation, on today's CPU), and Tap
// is the simulated broadcast->delivery delay. Absolute values differ from
// 1994 hardware; the reproduced result is the O(n) shape, reported as a
// log-log power-fit exponent.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/fuzz/json.h"
#include "src/fuzz/obs_json.h"
#include "src/harness/experiment.h"
#include "src/obs/observe.h"

int main(int argc, char** argv) {
  using namespace co;

  // --json FILE: machine-readable sweep (rows + fits + the final metrics
  // snapshot of the largest-n run) for the nightly CI artifact.
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_fig8 [--json FILE]\n";
      return 2;
    }
  }

  std::cout << "=== Figure 8: processing time (Tco) and delay (Tap) vs n ===\n"
            << "Workload: continuous DT requests from every entity "
            << "(paper: 'like the file transfer')\n\n";

  Table table({"n", "Tco [us/PDU]", "Tap [ms]", "ack delay [ms]",
               "PDUs on wire", "sim time [ms]"});
  std::vector<double> ns, tcos, taps;
  fuzz::Json::Array rows;
  fuzz::Json last_snapshot;

  for (const std::size_t n : {2u, 3u, 4u, 6u, 8u, 10u, 12u, 16u, 24u, 32u,
                              48u}) {
    harness::ExperimentConfig cfg;
    cfg.n = n;
    cfg.window = 8;
    cfg.link_delay = 100 * sim::kMicrosecond;
    // Finite receiver processing speed — the paper's premise (the network
    // outruns the entities). Tap therefore includes queueing behind the
    // O(n) PDUs each entity must process per delivered PDU.
    cfg.service_time = 30 * sim::kMicrosecond;
    cfg.buffer_capacity = 1u << 20;
    // The confirmation cadence must not exceed the cluster's service
    // capacity (each entity needs n * service_time to digest one round of
    // confirmations), or ingress queues grow without bound.
    cfg.defer_timeout = std::max<sim::SimDuration>(
        500 * sim::kMicrosecond,
        2 * static_cast<sim::SimDuration>(n) * cfg.service_time);
    cfg.workload.arrival = app::WorkloadConfig::Arrival::kContinuous;
    // Keep total broadcasts roughly constant across n so wall-clock noise
    // in Tco is comparable.
    cfg.workload.messages_per_entity = std::max<std::size_t>(100, 4800 / n);
    cfg.workload.payload_bytes = 64;
    cfg.seed = 42 + n;

    // The introspection bundle is callback-sampled, so attaching it does
    // not perturb the run (obs_test proves this); the JSON artifact gets
    // the full final snapshot of the largest-n run.
    obs::Observability bundle(n);
    if (!json_path.empty()) cfg.obs = &bundle;

    const auto r = harness::run_co_experiment(cfg);
    if (!r.completed) {
      std::cout << "n=" << n << ": DID NOT COMPLETE\n";
      return 1;
    }
    ns.push_back(static_cast<double>(n));
    tcos.push_back(r.tco_us);
    taps.push_back(r.tap_ms);
    table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                   Table::num(r.tco_us, 3), Table::num(r.tap_ms, 3),
                   Table::num(r.accept_to_ack_ms, 3),
                   Table::num(r.wire_pdus), Table::num(r.sim_ms, 1)});
    if (!json_path.empty()) {
      fuzz::Json::Object row;
      row["n"] = fuzz::Json(static_cast<std::uint64_t>(n));
      row["tco_us"] = fuzz::Json(r.tco_us);
      row["tap_ms"] = fuzz::Json(r.tap_ms);
      row["accept_to_ack_ms"] = fuzz::Json(r.accept_to_ack_ms);
      row["wire_pdus"] = fuzz::Json(r.wire_pdus);
      row["sim_ms"] = fuzz::Json(r.sim_ms);
      rows.push_back(fuzz::Json(std::move(row)));
      if (r.metrics) last_snapshot = fuzz::metrics_to_json(*r.metrics);
    }
  }
  table.print(std::cout);
  table.write_csv_if_requested("fig8");

  const auto tco_fit = fit_power(ns, tcos);
  const auto tap_fit = fit_power(ns, taps);
  std::cout << "\nTco growth: Tco(n) ~ n^" << Table::num(tco_fit.exponent, 2)
            << " (R^2=" << Table::num(tco_fit.r2, 3) << ")\n"
            << "Tap growth: Tap(n) ~ n^" << Table::num(tap_fit.exponent, 2)
            << " (R^2=" << Table::num(tap_fit.r2, 3) << ")\n"
            << "Paper's claim: both O(n); exponents near 1 (and well below 2) "
               "reproduce the figure's shape.\n";

  if (!json_path.empty()) {
    auto fit_json = [](const PowerFit& fit) {
      fuzz::Json::Object o;
      o["coeff"] = fuzz::Json(fit.coeff);
      o["exponent"] = fuzz::Json(fit.exponent);
      o["r2"] = fuzz::Json(fit.r2);
      return fuzz::Json(std::move(o));
    };
    fuzz::Json::Object doc;
    doc["bench"] = fuzz::Json("fig8");
    doc["rows"] = fuzz::Json(std::move(rows));
    doc["tco_fit"] = fit_json(tco_fit);
    doc["tap_fit"] = fit_json(tap_fit);
    doc["final_metrics"] = last_snapshot;  // largest-n run's snapshot
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << '\n';
      return 1;
    }
    out << fuzz::Json(std::move(doc)).dump(2) << '\n';
    std::cout << "wrote " << json_path << '\n';
  }
  return 0;
}
