// Fault-tolerant replicated account ledger — the paper's other motivating
// domain ("In order to realize fault-tolerant systems, the same events have
// to occur in the same order in each entity").
//
// Four replicas apply operations broadcast through the CO protocol over a
// lossy network. Operations issued after observing a balance are causally
// dependent on the deposits they observed, so every replica applies a
// dependent withdrawal AFTER the deposits that funded it — the overdraft
// check is therefore deterministic across replicas even though truly
// concurrent deposits may interleave differently.
#include <iostream>
#include <string>

#include "src/driver/cluster.h"

namespace {

struct Op {
  char kind;       // 'D' deposit, 'W' withdraw
  long amount;

  std::vector<std::uint8_t> encode() const {
    const std::string s = std::string(1, kind) + std::to_string(amount);
    return {s.begin(), s.end()};
  }
  static Op decode(const std::vector<std::uint8_t>& bytes) {
    const std::string s(bytes.begin(), bytes.end());
    return Op{s[0], std::stol(s.substr(1))};
  }
};

struct Replica {
  long balance = 0;
  long rejected = 0;

  void apply(const Op& op) {
    if (op.kind == 'D') {
      balance += op.amount;
    } else if (balance >= op.amount) {
      balance -= op.amount;
    } else {
      ++rejected;  // overdraft refused
    }
  }
};

}  // namespace

int main() {
  using namespace co;
  using namespace co::proto;

  constexpr std::size_t kReplicas = 4;
  ClusterOptions options;
  options.proto.n = kReplicas;
  options.net.delay = net::DelayModel::uniform(
      80 * sim::kMicrosecond, 300 * sim::kMicrosecond, /*seed=*/11);
  options.net.buffer_capacity = 1u << 16;
  options.net.injected_loss = 0.05;
  options.net.seed = 3;
  CoCluster cluster(options);

  auto issue = [&](EntityId at, Op op) { cluster.submit(at, op.encode()); };

  // Two concurrent deposits from different sites...
  issue(0, {'D', 70});
  issue(1, {'D', 50});
  cluster.run_until_delivered(10'000 * sim::kMillisecond);
  // ...and a withdrawal issued only after site 2 OBSERVED both deposits
  // (balance 120 at site 2). Causal order guarantees every replica applies
  // the withdrawal after both deposits, so it succeeds everywhere.
  issue(2, {'W', 100});
  cluster.run_until_delivered(20'000 * sim::kMillisecond);
  // A second round: site 3 reacts to the post-withdrawal balance.
  issue(3, {'D', 30});
  cluster.run_until_delivered(30'000 * sim::kMillisecond);
  issue(0, {'W', 45});
  cluster.run_until_delivered(60'000 * sim::kMillisecond);

  bool agree = true;
  long reference = -1;
  for (EntityId e = 0; e < static_cast<EntityId>(kReplicas); ++e) {
    Replica r;
    for (const auto& d : cluster.deliveries(e)) r.apply(Op::decode(d.data));
    std::cout << "replica " << e << ": balance=" << r.balance
              << " rejected_overdrafts=" << r.rejected << '\n';
    if (reference < 0) reference = r.balance;
    if (r.balance != reference || r.rejected != 0) agree = false;
  }

  if (const auto v = cluster.check_co_service()) {
    std::cout << "CO service violated: " << v->to_string() << '\n';
    return 1;
  }
  std::cout << (agree ? "all replicas agree (no spurious overdrafts), "
                        "despite packet loss and retransmission\n"
                      : "replicas DIVERGED\n");
  return agree ? 0 : 1;
}
