// Quickstart: a three-entity cluster exchanging causally ordered broadcasts.
//
//   cmake --build build && ./build/examples/quickstart
//
// Demonstrates the core API surface:
//   * build a CoCluster (scheduler + MC network + n CO entities),
//   * submit application data (DT requests),
//   * run the simulation until everything is delivered,
//   * read each entity's delivery log and verify the CO service.
#include <iostream>
#include <string>

#include "src/driver/cluster.h"

int main() {
  using namespace co;
  using namespace co::proto;

  // A cluster C = <E0, E1, E2> on a 100 us multi-channel network.
  // (ClusterBuilder is sugar over ClusterOptions; either works.)
  net::McConfig network;
  network.delay = net::DelayModel::fixed(100 * sim::kMicrosecond);
  network.buffer_capacity = 1024;
  const auto built = ClusterBuilder(3).window(8).net(network).build();
  CoCluster& cluster = *built;

  // E0 asks a question; once it is delivered everywhere, E1 answers.
  // The answer is causally AFTER the question, so the CO protocol delivers
  // question-then-answer at every entity, always.
  cluster.submit_text(0, "E0: does anyone have the report?");
  cluster.run_until_delivered(1'000 * sim::kMillisecond);
  cluster.submit_text(1, "E1: yes, sending it over.");
  cluster.submit_text(2, "E2: (concurrently) good morning all!");
  cluster.run_until_delivered(2'000 * sim::kMillisecond);

  for (EntityId e = 0; e < 3; ++e) {
    std::cout << "--- delivery log at E" << e << " ---\n";
    for (const auto& d : cluster.deliveries(e)) {
      std::cout << "  [t=" << sim::to_ms(d.at) << " ms] "
                << std::string(d.data.begin(), d.data.end()) << '\n';
    }
  }

  // The happened-before oracle confirms the causal order was preserved.
  if (const auto violation = cluster.check_co_service()) {
    std::cout << "CO service VIOLATED: " << violation->to_string() << '\n';
    return 1;
  }
  std::cout << "\nCO service verified: every entity saw the question before "
               "the answer.\n";
  return 0;
}
