// CSCW groupware chat — the application domain the paper's introduction
// motivates ("distributed applications like CSCW ... require group
// communication").
//
// Five collaborators chat over a lossy high-speed network. Replies are
// causally dependent on the messages they answer; the CO protocol
// guarantees no site ever renders a reply before the message it quotes,
// even while lost PDUs are being retransmitted. A FIFO-only (LO) service
// cannot make that promise — see tests/baselines_test.cpp.
#include <iostream>
#include <map>
#include <string>

#include "src/driver/cluster.h"

namespace {

struct ChatMessage {
  int id;
  int reply_to;  // -1 = fresh message
  std::string text;

  std::vector<std::uint8_t> encode() const {
    std::string s = std::to_string(id) + "|" + std::to_string(reply_to) + "|" +
                    text;
    return {s.begin(), s.end()};
  }
  static ChatMessage decode(const std::vector<std::uint8_t>& bytes) {
    const std::string s(bytes.begin(), bytes.end());
    const auto p1 = s.find('|');
    const auto p2 = s.find('|', p1 + 1);
    return ChatMessage{std::stoi(s.substr(0, p1)),
                       std::stoi(s.substr(p1 + 1, p2 - p1 - 1)),
                       s.substr(p2 + 1)};
  }
};

}  // namespace

int main() {
  using namespace co;
  using namespace co::proto;

  constexpr std::size_t kUsers = 5;
  const char* names[kUsers] = {"ann", "bob", "cho", "dee", "eli"};

  ClusterOptions options;
  options.proto.n = kUsers;
  options.net.delay = net::DelayModel::uniform(
      50 * sim::kMicrosecond, 400 * sim::kMicrosecond, /*seed=*/2026);
  options.net.buffer_capacity = 1u << 16;
  options.net.injected_loss = 0.08;  // flaky wifi
  options.net.seed = 7;
  CoCluster cluster(options);

  int next_id = 0;
  auto say = [&](EntityId who, int reply_to, const std::string& text) {
    const ChatMessage m{next_id++, reply_to, text};
    cluster.submit(who, m.encode());
    return m.id;
  };

  // A conversation where answers follow sight of the question: each user
  // replies only after the quoted message was DELIVERED at their site.
  const int q1 = say(0, -1, "shall we ship v2 on friday?");
  cluster.run_until_delivered(10'000 * sim::kMillisecond);
  const int a1 = say(1, q1, "yes, docs are ready");
  const int a2 = say(2, q1, "hold on, perf tests still red");
  cluster.run_until_delivered(20'000 * sim::kMillisecond);
  const int a3 = say(3, a2, "red only on the old runner, ignore");
  cluster.run_until_delivered(30'000 * sim::kMillisecond);
  say(4, a3, "ok then friday it is");
  cluster.run_until_delivered(40'000 * sim::kMillisecond);

  // Render every site's view and check the invariant: a reply never appears
  // before the message it quotes.
  bool ok = true;
  for (EntityId e = 0; e < static_cast<EntityId>(kUsers); ++e) {
    std::cout << "=== chat as seen by " << names[e] << " ===\n";
    std::map<int, bool> seen;
    for (const auto& d : cluster.deliveries(e)) {
      const auto m = ChatMessage::decode(d.data);
      std::cout << "  " << names[d.key.src] << ": " << m.text;
      if (m.reply_to >= 0) {
        std::cout << "  (reply to #" << m.reply_to << ")";
        if (!seen[m.reply_to]) {
          std::cout << "  <-- REPLY BEFORE ORIGINAL!";
          ok = false;
        }
      }
      std::cout << '\n';
      seen[m.id] = true;
    }
  }

  const auto& net_stats = cluster.network().stats();
  std::cout << "\nnetwork: " << net_stats.dropped_total()
            << " PDU copies lost, "
            << cluster.aggregate_stats().retransmissions_sent
            << " selectively retransmitted\n";
  if (const auto v = cluster.check_co_service()) {
    std::cout << "CO service violated: " << v->to_string() << '\n';
    return 1;
  }
  std::cout << (ok ? "invariant held at every site: no reply rendered before "
                     "its original\n"
                   : "invariant BROKEN\n");
  return ok ? 0 : 1;
}
