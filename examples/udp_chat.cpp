// udp_chat — the CO protocol on real UDP sockets, as a tiny chat tool.
//
// Demo mode (default, used by the test suite): runs a 3-node cluster inside
// one process, over real loopback sockets with 10% injected send loss, and
// prints each node's causally ordered view of a scripted conversation.
//
// Multi-process mode: run one instance per terminal —
//   ./udp_chat --self 0 --peers 9000,9001,9002
//   ./udp_chat --self 1 --peers 9000,9001,9002
//   ./udp_chat --self 2 --peers 9000,9001,9002
// then type lines; every line is causally broadcast to all members.
#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/transport/node.h"

namespace {

using namespace co;
using namespace co::transport;
using namespace std::chrono_literals;

std::vector<UdpEndpoint> parse_peers(const std::string& csv) {
  std::vector<UdpEndpoint> peers;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ','))
    peers.push_back(UdpEndpoint::loopback(
        static_cast<std::uint16_t>(std::stoi(tok))));
  return peers;
}

int run_interactive(EntityId self, std::vector<UdpEndpoint> peers) {
  auto node =
      NodeBuilder(self, peers.size())
          .peers(std::move(peers))
          .deliver([](EntityId src, const std::vector<std::uint8_t>& data) {
            std::cout << "  [from node " << src << "] "
                      << std::string(data.begin(), data.end()) << '\n';
          })
          .build();
  std::cout << "node " << self << " listening on port "
            << node->local_endpoint().port << "; type messages:\n";
  std::atomic<bool> done{false};
  std::thread loop([&] {
    while (!done.load()) node->poll_once(5ms);
  });
  std::string line;
  while (std::getline(std::cin, line))
    if (!line.empty()) node->submit({line.begin(), line.end()});
  done.store(true);
  loop.join();
  return 0;
}

int run_demo() {
  constexpr std::size_t kNodes = 3;
  std::mutex out_mutex;
  std::vector<std::vector<std::string>> views(kNodes);

  proto::CoConfig pcfg;
  pcfg.defer_timeout = 2 * time::kMillisecond;
  pcfg.retransmit_timeout = 10 * time::kMillisecond;

  std::vector<std::unique_ptr<CoNode>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    const auto id = static_cast<EntityId>(i);
    nodes.push_back(
        NodeBuilder(id, kNodes)
            .proto(pcfg)
            .send_loss(0.10, 7 + i)  // flaky "network"
            .deliver([&views, &out_mutex, id](
                         EntityId src, const std::vector<std::uint8_t>& data) {
              const std::lock_guard<std::mutex> lock(out_mutex);
              views[static_cast<std::size_t>(id)].push_back(
                  "node" + std::to_string(src) + ": " +
                  std::string(data.begin(), data.end()));
            })
            .build());
  }
  std::vector<UdpEndpoint> table;
  for (const auto& n : nodes) table.push_back(n->local_endpoint());
  for (auto& n : nodes) n->set_peers(table);

  std::vector<std::thread> threads;
  for (auto& n : nodes)
    threads.emplace_back([&n] { n->run_for(10'000ms); });

  auto say = [&](EntityId who, const std::string& text) {
    nodes[static_cast<std::size_t>(who)]->submit({text.begin(), text.end()});
  };
  auto everyone_has = [&](std::size_t count) {
    const auto deadline = std::chrono::steady_clock::now() + 8'000ms;
    for (;;) {
      {
        const std::lock_guard<std::mutex> lock(out_mutex);
        bool ok = true;
        for (const auto& v : views) ok &= v.size() >= count;
        if (ok) return true;
      }
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(2ms);
    }
  };

  say(0, "anyone up for lunch?");
  bool ok = everyone_has(1);
  say(1, "yes! the usual place?");  // causally after the question
  ok = ok && everyone_has(2);
  say(2, "count me in");
  ok = ok && everyone_has(3);

  for (auto& n : nodes) n->stop();
  for (auto& t : threads) t.join();

  bool order_ok = true;
  for (std::size_t i = 0; i < kNodes; ++i) {
    std::cout << "--- node " << i << " saw ---\n";
    for (const auto& line : views[i]) std::cout << "  " << line << '\n';
    // The reply must never precede the question at any node.
    if (views[i].size() >= 2 &&
        views[i][0].find("anyone up") == std::string::npos)
      order_ok = false;
  }
  std::uint64_t dropped = 0, rtx = 0;
  for (const auto& n : nodes) {
    dropped += n->stats().datagrams_dropped_injected;
    rtx += n->protocol_stats().retransmissions_sent;
  }
  std::cout << "\nreal UDP datagrams deliberately dropped: " << dropped
            << "; selectively retransmitted PDUs: " << rtx << '\n';
  if (!ok || !order_ok) {
    std::cout << "FAILED (delivered=" << ok << " ordered=" << order_ok
              << ")\n";
    return 1;
  }
  std::cout << "causal order held at every node, over real sockets, under "
               "loss.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  EntityId self = -1;
  std::string peers_csv;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self" && i + 1 < argc) self = std::stoi(argv[++i]);
    if (arg == "--peers" && i + 1 < argc) peers_csv = argv[++i];
  }
  if (self >= 0 && !peers_csv.empty())
    return run_interactive(self, parse_peers(peers_csv));
  return run_demo();
}
