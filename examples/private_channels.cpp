// Selective group communication — the extension the paper defers to its
// reference [11] ("we do not consider selective group communication in this
// paper"), implemented here per DESIGN.md.
//
// A five-entity cluster runs three overlapping channels:
//   #general  -> everyone
//   #backend  -> {0, 1, 2}
//   #oncall   -> {2, 4}
// Every entity participates in the cluster-wide ordering/confirmation
// machinery for every PDU, but applications only see the channels they are
// in — and causal order holds across channel boundaries (a #general message
// sent after reading a #backend message never overtakes it at a common
// member).
#include <iostream>
#include <string>

#include "src/driver/cluster.h"

int main() {
  using namespace co;
  using namespace co::proto;

  constexpr std::size_t kUsers = 5;
  const char* names[kUsers] = {"ann", "bob", "cho", "dee", "eli"};

  ClusterOptions options;
  options.proto.n = kUsers;
  options.net.delay = net::DelayModel::uniform(
      50 * sim::kMicrosecond, 300 * sim::kMicrosecond, 17);
  options.net.buffer_capacity = 1u << 16;
  options.net.injected_loss = 0.05;
  options.net.seed = 23;
  CoCluster cluster(options);

  const DstMask backend = dst_of({0, 1, 2});
  const DstMask oncall = dst_of({2, 4});

  auto wait = [&](sim::SimDuration d) { cluster.run_for(d); };

  cluster.submit_text(0, "[backend] db migration starts now", backend);
  wait(2 * sim::kMillisecond);
  // cho (2) read the backend message, then pages oncall — causally after.
  cluster.submit_text(2, "[oncall] watch error rates during migration",
                      oncall);
  wait(2 * sim::kMillisecond);
  cluster.submit_text(4, "[oncall] ack, dashboards up", oncall);
  wait(2 * sim::kMillisecond);
  cluster.submit_text(1, "[backend] migration done", backend);
  cluster.submit_text(3, "[general] lunch anyone?");  // concurrent chatter
  const bool ok = cluster.run_until_delivered(60'000 * sim::kMillisecond);

  for (EntityId e = 0; e < static_cast<EntityId>(kUsers); ++e) {
    std::cout << "=== " << names[e] << " sees ===\n";
    for (const auto& d : cluster.deliveries(e))
      std::cout << "  " << names[d.key.src] << ": "
                << std::string(d.data.begin(), d.data.end()) << '\n';
  }

  std::cout << "\ncompleted: " << (ok ? "yes" : "NO") << '\n';
  if (const auto v = cluster.check_co_service()) {
    std::cout << "CO service violated: " << v->to_string() << '\n';
    return 1;
  }
  std::cout << "CO service verified per channel membership: each member saw "
               "exactly its channels, causally ordered across channel "
               "boundaries.\n";
  return ok ? 0 : 1;
}
