// Collaborative text editing over causal broadcast — the classic CSCW
// workload the paper's introduction motivates, taken all the way to a
// convergent replicated document.
//
// Each site edits a shared document through an RGA-style replicated
// sequence: an insert names the element it goes after; a delete names its
// victim. Both kinds of reference point at operations the issuing site had
// already DELIVERED, i.e. they are causal dependencies. The CO protocol's
// causal delivery is therefore exactly the property that makes every
// reference resolvable on arrival — no buffering layer needed in the app —
// while the RGA tie-break (by operation id) makes concurrent inserts
// converge. The run injects PDU loss; the final documents must still be
// byte-identical at every site.
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/driver/cluster.h"
#include "src/common/bytes.h"
#include "src/common/expect.h"
#include "src/common/rng.h"

namespace {

using co::EntityId;

/// Globally unique operation id: (site, per-site counter). Ordered so that
/// concurrent inserts resolve identically everywhere.
struct OpId {
  std::int32_t site = -1;
  std::uint32_t counter = 0;
  friend auto operator<=>(const OpId&, const OpId&) = default;
};

struct EditOp {
  enum class Kind : std::uint8_t { kInsert, kErase } kind = Kind::kInsert;
  OpId id;        // this operation's id (insert) or victim id (erase)
  OpId after;     // insert: predecessor element ({-1,0} = document head)
  char ch = '?';

  std::vector<std::uint8_t> encode() const {
    co::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(kind));
    w.u32(static_cast<std::uint32_t>(id.site));
    w.u32(id.counter);
    w.u32(static_cast<std::uint32_t>(after.site));
    w.u32(after.counter);
    w.u8(static_cast<std::uint8_t>(ch));
    return w.take();
  }
  static EditOp decode(const std::vector<std::uint8_t>& bytes) {
    co::ByteReader r(bytes);
    EditOp op;
    op.kind = static_cast<Kind>(r.u8());
    op.id.site = static_cast<std::int32_t>(r.u32());
    op.id.counter = r.u32();
    op.after.site = static_cast<std::int32_t>(r.u32());
    op.after.counter = r.u32();
    op.ch = static_cast<char>(r.u8());
    return op;
  }
};

/// RGA replicated sequence: elements in document order, tombstoned erases.
class Document {
 public:
  void apply(const EditOp& op) {
    if (op.kind == EditOp::Kind::kErase) {
      const auto it = index_.find(op.id);
      CO_EXPECT_MSG(it != index_.end(),
                    "erase references an unseen element — causal delivery "
                    "was violated");
      elements_[it->second].alive = false;
      return;
    }
    // Insert after `op.after`. Causal delivery guarantees the reference
    // exists (or is the head sentinel).
    std::size_t pos = 0;
    if (op.after.site >= 0) {
      const auto it = index_.find(op.after);
      CO_EXPECT_MSG(it != index_.end(),
                    "insert references an unseen element — causal delivery "
                    "was violated");
      pos = it->second + 1;
    }
    // RGA rule: skip over any elements already placed after the reference
    // whose id is LARGER — concurrent inserts at the same spot end up in
    // descending id order at every replica.
    while (pos < elements_.size() && op.id < elements_[pos].id) ++pos;
    elements_.insert(elements_.begin() + static_cast<std::ptrdiff_t>(pos),
                     Element{op.id, op.ch, true});
    reindex(pos);
  }

  /// Pick the id of the element currently at visible position `v` (or head).
  OpId reference_for_visible(std::size_t v) const {
    std::size_t seen = 0;
    for (const auto& e : elements_) {
      if (!e.alive) continue;
      if (seen == v) return e.id;
      ++seen;
    }
    return OpId{-1, 0};  // head
  }

  std::vector<OpId> visible_ids() const {
    std::vector<OpId> out;
    for (const auto& e : elements_)
      if (e.alive) out.push_back(e.id);
    return out;
  }

  std::string text() const {
    std::string out;
    for (const auto& e : elements_)
      if (e.alive) out.push_back(e.ch);
    return out;
  }

 private:
  struct Element {
    OpId id;
    char ch;
    bool alive;
  };
  void reindex(std::size_t from) {
    for (std::size_t i = from; i < elements_.size(); ++i)
      index_[elements_[i].id] = i;
  }
  std::vector<Element> elements_;
  std::map<OpId, std::size_t> index_;
};

}  // namespace

int main() {
  using namespace co;
  using namespace co::proto;

  constexpr std::size_t kSites = 4;
  ClusterOptions options;
  options.proto.n = kSites;
  options.net.delay = net::DelayModel::uniform(
      50 * sim::kMicrosecond, 400 * sim::kMicrosecond, 101);
  options.net.buffer_capacity = 1u << 16;
  options.net.injected_loss = 0.07;  // editing over flaky wifi
  options.net.seed = 55;
  CoCluster cluster(options);

  // Each site maintains its replica by applying DELIVERED operations.
  std::vector<Document> replica(kSites);
  std::vector<std::uint32_t> next_counter(kSites, 1);
  std::vector<std::size_t> cursor(kSites, 0);
  std::size_t applied = 0;

  auto drain = [&] {
    for (EntityId s = 0; s < static_cast<EntityId>(kSites); ++s) {
      const auto& log = cluster.deliveries(s);
      auto& cur = cursor[static_cast<std::size_t>(s)];
      while (cur < log.size()) {
        replica[static_cast<std::size_t>(s)].apply(
            EditOp::decode(log[cur].data));
        ++cur;
        ++applied;
      }
    }
  };

  Rng rng(7);
  auto type_char = [&](EntityId site, char ch) {
    auto& doc = replica[static_cast<std::size_t>(site)];
    EditOp op;
    op.kind = EditOp::Kind::kInsert;
    op.id = OpId{site, next_counter[static_cast<std::size_t>(site)]++};
    // Insert after a random visible position of the LOCAL replica — i.e.
    // after something this site has already delivered.
    const auto ids = doc.visible_ids();
    op.after = ids.empty() ? OpId{-1, 0}
                           : ids[rng.next_below(ids.size())];
    op.ch = ch;
    cluster.submit(site, op.encode());
  };
  auto erase_one = [&](EntityId site) {
    auto& doc = replica[static_cast<std::size_t>(site)];
    const auto ids = doc.visible_ids();
    if (ids.empty()) return;
    EditOp op;
    op.kind = EditOp::Kind::kErase;
    op.id = ids[rng.next_below(ids.size())];
    cluster.submit(site, op.encode());
  };

  // Concurrent editing session: 4 users interleave typing and deleting.
  const std::string material =
      "the quick brown fox jumps over the lazy dog and keeps typing";
  std::size_t mi = 0;
  for (int burst = 0; burst < 30; ++burst) {
    const auto site = static_cast<EntityId>(rng.next_below(kSites));
    if (rng.next_bool(0.8) || burst < 4) {
      type_char(site, material[mi++ % material.size()]);
    } else {
      erase_one(site);
    }
    cluster.run_for(static_cast<sim::SimDuration>(rng.next_below(1500)) *
                    1000);
    drain();
  }
  const bool done = cluster.run_until_delivered(600'000 * sim::kMillisecond);
  drain();

  bool converged = true;
  const std::string reference = replica[0].text();
  for (std::size_t s = 0; s < kSites; ++s) {
    std::cout << "site " << s << ": \"" << replica[s].text() << "\"\n";
    if (replica[s].text() != reference) converged = false;
  }
  std::cout << "\noperations applied across sites: " << applied
            << "; PDU copies lost in the network: "
            << cluster.network().stats().dropped_total() << '\n';

  if (!done || !converged) {
    std::cout << "FAILED (done=" << done << " converged=" << converged
              << ")\n";
    return 1;
  }
  if (const auto v = cluster.check_co_service()) {
    std::cout << "CO service violated: " << v->to_string() << '\n';
    return 1;
  }
  std::cout << "all replicas converged to the same document — every edit's "
               "causal reference was already present on arrival.\n";
  return 0;
}
