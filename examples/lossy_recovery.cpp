// Anatomy of a loss recovery — a narrated run of the failure-detection and
// selective-retransmission machinery of §4.3.
//
// E0 broadcasts a stream of PDUs; the network deterministically destroys
// one copy on the E0->E2 channel. The example prints the protocol's own
// counters at each phase: the failure condition firing at E2, the RET PDU,
// the selective rebroadcast from E0, and the final, gap-free delivery.
#include <iostream>

#include "src/driver/cluster.h"
#include "src/co/trace_categories.h"
#include "src/sim/trace.h"

int main() {
  using namespace co;
  using namespace co::proto;

  // Retain the full protocol event trace; interesting slices are printed
  // at the end.
  sim::RingTrace trace(1u << 16);

  ClusterOptions options;
  options.proto.n = 3;
  options.proto.retransmit_timeout = 2 * sim::kMillisecond;
  options.net.delay = net::DelayModel::fixed(100 * sim::kMicrosecond);
  options.net.buffer_capacity = 1024;
  options.trace_sink = &trace;
  CoCluster cluster(options);

  std::cout << "E0 will broadcast 6 PDUs; the copy of PDU #3 addressed to E2 "
               "is destroyed in flight.\n\n";
  cluster.submit_text(0, "pdu-1");
  cluster.submit_text(0, "pdu-2");
  cluster.run_for(1 * sim::kMillisecond);  // let their copies land
  cluster.network().force_drop(0, 2, 1);   // next E0->E2 copy vanishes
  cluster.submit_text(0, "pdu-3");
  cluster.submit_text(0, "pdu-4");
  cluster.submit_text(0, "pdu-5");
  cluster.submit_text(0, "pdu-6");

  const bool ok = cluster.run_until_delivered(10'000 * sim::kMillisecond);

  const auto& e2 = cluster.entity(2).stats();
  const auto& e0 = cluster.entity(0).stats();
  std::cout << "at E2 (the victim):\n"
            << "  failure condition (1) gap detections : " << e2.f1_detections
            << "\n"
            << "  failure condition (2) ack detections : " << e2.f2_detections
            << "\n"
            << "  RET PDUs broadcast                   : " << e2.ret_pdus_sent
            << "\n"
            << "  out-of-order PDUs parked (selective) : "
            << e2.parked_out_of_order << "\n"
            << "at E0 (the source):\n"
            << "  PDUs selectively rebroadcast         : "
            << e0.retransmissions_sent << "  (go-back-n would have resent "
            << "the whole suffix)\n\n";

  std::cout << "protocol trace at E2 (failure detection and recovery):\n";
  for (const auto& entry : trace.entries()) {
    if (entry.actor != 2) continue;
    namespace cat = co::proto::cat;
    if (entry.category == cat::kF1 || entry.category == cat::kF2 ||
        entry.category == cat::kRet || entry.category == cat::kDup) {
      std::cout << "  [t=" << sim::to_ms(entry.at) << " ms] E2 "
                << entry.category << ": " << entry.text << '\n';
    }
  }
  std::cout << "protocol trace at E0 (the selective rebroadcast):\n";
  for (const auto& entry : trace.entries()) {
    if (entry.actor == 0 && entry.category == co::proto::cat::kRtx)
      std::cout << "  [t=" << sim::to_ms(entry.at) << " ms] E0 rtx: "
                << entry.text << '\n';
  }

  std::cout << "\ndelivery log at E2 (complete and in order):\n";
  for (const auto& d : cluster.deliveries(2))
    std::cout << "  [t=" << sim::to_ms(d.at) << " ms] "
              << std::string(d.data.begin(), d.data.end()) << '\n';

  if (!ok) {
    std::cout << "recovery FAILED\n";
    return 1;
  }
  if (const auto v = cluster.check_co_service()) {
    std::cout << "CO service violated: " << v->to_string() << '\n';
    return 1;
  }
  std::cout << "\nrecovered: information-preserved and causality-preserved "
               "at every entity.\n";
  return 0;
}
