// Binary event tracing end to end — the docs/OBSERVABILITY.md walkthrough.
//
// Runs a 6-entity cluster with a flight-recorder Tracer attached, then:
//   1. dumps the resident tail as traced_run.cotrace (the binary format
//      src/obs/trace/file.h defines);
//   2. re-reads it through the strict parser (a dump that does not
//      validate is a bug, and this example exits nonzero on it);
//   3. converts it to traced_run.json — Chrome trace_event JSON you can
//      drop into ui.perfetto.dev or chrome://tracing to see one track per
//      entity and a flow arrow following every PDU from its send slice to
//      each remote accept/pack/ack/deliver milestone;
//   4. prints the co_inspect-style summary.
//
// The same conversion is available from the command line:
//   co_inspect trace --n 6 --messages 4 --perfetto trace.json
//   co_inspect trace --from counterexample.json.cotrace --summary
#include <algorithm>
#include <fstream>
#include <iostream>

#include "src/driver/cluster.h"
#include "src/obs/trace/file.h"
#include "src/obs/trace/perfetto.h"
#include "src/obs/trace/tracer.h"

int main() {
  using namespace co;

  // A flight-recorder tracer: per-thread lock-free rings keep the newest
  // 16k records. The simulated cluster is single-threaded, so this run
  // lands in exactly one stream.
  obs::trace::Tracer tracer;

  auto cluster = proto::ClusterBuilder(6).window(8).tracer(&tracer).build();

  // A little causal structure: E0 announces, everyone replies, E0 closes.
  cluster->submit_text(0, "announce");
  cluster->run_for(1 * sim::kMillisecond);
  for (EntityId e = 1; e < 6; ++e)
    cluster->submit_text(e, "reply-from-E" + std::to_string(e));
  cluster->run_for(1 * sim::kMillisecond);
  cluster->submit_text(0, "close");
  if (!cluster->run_until_delivered(1000 * sim::kMillisecond)) {
    std::cerr << "traced_run: cluster did not deliver everything\n";
    return 1;
  }
  if (const auto v = cluster->check_co_service()) {
    std::cerr << "traced_run: CO-service violation: " << v->to_string()
              << "\n";
    return 1;
  }

  // 1. Dump the flight tail.
  const char* trace_path = "traced_run.cotrace";
  if (!tracer.write_snapshot_file(trace_path)) {
    std::cerr << "traced_run: cannot write " << trace_path << "\n";
    return 1;
  }

  // 2. Strict re-read: the reader, not the writer, is the arbiter.
  obs::trace::ParsedTrace parsed;
  if (const auto err = obs::trace::read_trace_file(trace_path, parsed)) {
    std::cerr << "traced_run: " << trace_path << " invalid: " << *err << "\n";
    return 1;
  }
  std::vector<obs::trace::Record> records = std::move(parsed.records);
  std::stable_sort(records.begin(), records.end(),
                   [](const obs::trace::Record& a,
                      const obs::trace::Record& b) { return a.at < b.at; });

  // 3. Perfetto conversion.
  const char* json_path = "traced_run.json";
  {
    std::ofstream os(json_path, std::ios::trunc);
    if (!os) {
      std::cerr << "traced_run: cannot write " << json_path << "\n";
      return 1;
    }
    obs::trace::write_perfetto_json(os, records);
  }

  // 4. Summary.
  std::cout << "traced_run: " << records.size() << " records -> "
            << trace_path << ", " << json_path
            << " (open in ui.perfetto.dev)\n";
  obs::trace::write_trace_summary(std::cout, records,
                                  parsed.dropped_total());

  // Smoke-test invariant: 7 data PDUs, each with a send record, and the
  // deliver count matches 7 PDUs * 6 destinations.
  std::size_t sends = 0, delivers = 0;
  for (const auto& r : records) {
    const auto e = static_cast<obs::trace::EventId>(r.event);
    if (e == obs::trace::EventId::kSend && r.arg == 1) ++sends;
    if (e == obs::trace::EventId::kDeliver) ++delivers;
  }
  if (sends != 7 || delivers != 7 * 6) {
    std::cerr << "traced_run: unexpected trace shape (sends=" << sends
              << ", delivers=" << delivers << ")\n";
    return 1;
  }
  return 0;
}
